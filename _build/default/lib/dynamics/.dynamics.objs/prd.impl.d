lib/dynamics/prd.ml: Allocation Array Graph List Rational
