lib/dynamics/prd_exact.ml: Allocation Array Graph Rational
