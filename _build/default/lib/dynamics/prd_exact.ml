module Q = Rational

type t = { g : Graph.t; send : Q.t array array }

let init g =
  let send =
    Array.init (Graph.n g) (fun v ->
        let d = Graph.degree g v in
        let w = Graph.weight g v in
        Array.make d (if d = 0 then Q.zero else Q.div_int w d))
  in
  { g; send }

let slot g v u =
  let nb = Graph.neighbors g v in
  let rec find i = if nb.(i) = u then i else find (i + 1) in
  find 0

let of_allocation alloc =
  let g = Allocation.graph alloc in
  let send =
    Array.init (Graph.n g) (fun v ->
        Array.map
          (fun u -> Allocation.amount alloc ~src:v ~dst:u)
          (Graph.neighbors g v))
  in
  { g; send }

let sends st ~src ~dst =
  if Graph.mem_edge st.g src dst then st.send.(src).(slot st.g src dst)
  else Q.zero

let received st v =
  Array.fold_left
    (fun acc u -> Q.add acc (st.send.(u).(slot st.g u v)))
    Q.zero (Graph.neighbors st.g v)

let utilities st = Array.init (Graph.n st.g) (received st)

let step st =
  let g = st.g in
  let send' =
    Array.init (Graph.n g) (fun v ->
        let nb = Graph.neighbors g v in
        let w = Graph.weight g v in
        let total = received st v in
        if Q.is_zero total then
          Array.make (Array.length nb)
            (if Array.length nb = 0 then Q.zero
             else Q.div_int w (Array.length nb))
        else
          Array.map
            (fun u -> Q.mul (Q.div (st.send.(u).(slot g u v)) total) w)
            nb)
  in
  { g; send = send' }

let run ~iters g =
  let rec go st n = if n = 0 then st else go (step st) (n - 1) in
  go (init g) iters

let equal a b =
  try
    Array.for_all2
      (fun ra rb -> Array.for_all2 Q.equal ra rb)
      a.send b.send
  with Invalid_argument _ -> false

let agrees_with_allocation st alloc = equal st (of_allocation alloc)
