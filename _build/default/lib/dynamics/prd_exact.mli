(** Proportional response dynamics over exact rationals.

    Identical recurrence to {!Prd}, but every iterate is an exact rational
    allocation.  Denominators grow with each round, so this path is meant
    for short horizons and for checking the float path and fixed-point
    property, not for long trajectories. *)

type t

val init : Graph.t -> t
val step : t -> t
val run : iters:int -> Graph.t -> t

val of_allocation : Allocation.t -> t
(** Starts the dynamics {e at} a given allocation — used to verify that the
    BD allocation is a fixed point. *)

val sends : t -> src:int -> dst:int -> Rational.t
val utilities : t -> Rational.t array
val equal : t -> t -> bool
val agrees_with_allocation : t -> Allocation.t -> bool
