(** Closed-form utilities of the BD allocation (paper, Proposition 6):
    [U_v = w_v·α_i] for [v ∈ B_i] and [U_v = w_v/α_i] for [v ∈ C_i]
    (hence [U_v = w_v] in an [α = 1] pair). *)

val of_vertex : Graph.t -> Decompose.t -> int -> Rational.t
val of_decomposition : Graph.t -> Decompose.t -> Rational.t array

val total : Graph.t -> Decompose.t -> Rational.t
(** Σ_v U_v; equals Σ_v w_v since every transferred unit is received. *)
