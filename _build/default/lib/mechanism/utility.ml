module Q = Rational

let of_vertex g d v =
  let p = Decompose.pair_of d v in
  let w = Graph.weight g v in
  if Q.is_zero w then Q.zero
  else if Q.equal p.alpha Q.one then w
  else if Vset.mem v p.b then Q.mul w p.alpha
  else Q.div w p.alpha

let of_decomposition g d =
  Array.init (Graph.n g) (fun v -> of_vertex g d v)

let total g d =
  Array.fold_left Q.add Q.zero (of_decomposition g d)
