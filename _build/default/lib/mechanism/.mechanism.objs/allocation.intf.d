lib/mechanism/allocation.mli: Decompose Format Graph Rational
