lib/mechanism/utility.mli: Decompose Graph Rational
