lib/mechanism/allocation.ml: Array Classes Decompose Format Graph Hashtbl List Maxflow Printf Rational Utility Vset
