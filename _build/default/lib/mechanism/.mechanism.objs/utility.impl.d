lib/mechanism/utility.ml: Array Decompose Graph Rational Vset
