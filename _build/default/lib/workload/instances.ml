let ring ~seed ~n dist =
  let rng = Prng.create seed in
  Generators.ring (Weights.sample rng dist n)

let path ~seed ~n dist =
  let rng = Prng.create seed in
  Generators.path (Weights.sample rng dist n)

let random_graph ~seed ~n ~p dist =
  let rng = Prng.create seed in
  let attempt () =
    let weights = Weights.sample rng dist n in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Prng.float rng < p then edges := (u, v) :: !edges
      done
    done;
    Graph.create ~weights ~edges:!edges
  in
  let rec retry k =
    let g = attempt () in
    let isolated = ref false in
    for v = 0 to n - 1 do
      if Graph.degree g v = 0 then isolated := true
    done;
    if (not !isolated) || k = 0 then g else retry (k - 1)
  in
  retry 50

let ring_family ~seeds ~sizes dists =
  List.concat_map
    (fun seed ->
      List.concat_map
        (fun n ->
          List.map
            (fun dist ->
              ( Printf.sprintf "ring(n=%d,%s,seed=%d)" n (Weights.name dist)
                  seed,
                ring ~seed ~n dist ))
            dists)
        sizes)
    seeds
