module Q = Rational

type distribution =
  | Uniform of int * int
  | Powerlaw of int * float
  | Bimodal of int * int * float
  | Constant of int

let sample_one rng = function
  | Uniform (lo, hi) ->
      if lo < 1 || hi < lo then invalid_arg "Weights: bad uniform range";
      Prng.int_in rng lo hi
  | Powerlaw (wmax, s) ->
      if wmax < 1 then invalid_arg "Weights: bad powerlaw max";
      (* Inverse-transform sample of a continuous power law truncated to
         [1, wmax], rounded to an integer weight. *)
      let u = Prng.float rng in
      let x =
        if Float.abs (s -. 1.0) < 1e-9 then
          Float.exp (u *. Float.log (float_of_int wmax))
        else
          let p = 1.0 -. s in
          ((u *. ((float_of_int wmax ** p) -. 1.0)) +. 1.0) ** (1.0 /. p)
      in
      Stdlib.max 1 (Stdlib.min wmax (int_of_float (Float.round x)))
  | Bimodal (small, large, p_large) ->
      if Prng.float rng < p_large then large else small
  | Constant w ->
      if w < 1 then invalid_arg "Weights: non-positive constant";
      w

let sample rng dist n = Array.init n (fun _ -> Q.of_int (sample_one rng dist))

let name = function
  | Uniform (lo, hi) -> Printf.sprintf "uniform[%d,%d]" lo hi
  | Powerlaw (wmax, s) -> Printf.sprintf "powerlaw(max=%d,s=%.1f)" wmax s
  | Bimodal (a, b, p) -> Printf.sprintf "bimodal(%d,%d,p=%.2f)" a b p
  | Constant w -> Printf.sprintf "constant(%d)" w
