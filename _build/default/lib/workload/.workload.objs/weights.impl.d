lib/workload/weights.ml: Array Float Printf Prng Rational Stdlib
