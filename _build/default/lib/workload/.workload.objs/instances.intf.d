lib/workload/instances.mli: Graph Weights
