lib/workload/instances.ml: Generators Graph List Printf Prng Weights
