lib/workload/weights.mli: Prng Rational
