lib/workload/prng.mli:
