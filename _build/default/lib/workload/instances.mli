(** Instance families for the experiment harness. *)

val ring : seed:int -> n:int -> Weights.distribution -> Graph.t
val path : seed:int -> n:int -> Weights.distribution -> Graph.t

val random_graph : seed:int -> n:int -> p:float -> Weights.distribution -> Graph.t
(** Erdős–Rényi G(n, p), re-drawn until no vertex is isolated (bounded
    retries).  Used by the general-graph cross-checks. *)

val ring_family :
  seeds:int list -> sizes:int list -> Weights.distribution list ->
  (string * Graph.t) list
(** Cartesian product of seeds, sizes and distributions, with descriptive
    labels. *)
