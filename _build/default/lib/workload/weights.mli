(** Weight-profile distributions for experiment workloads. *)

type distribution =
  | Uniform of int * int  (** integer weights uniform in [lo, hi] *)
  | Powerlaw of int * float
      (** [Powerlaw (wmax, s)]: Zipf-like integer weights with exponent
          [s] scaled into [1, wmax] *)
  | Bimodal of int * int * float
      (** [Bimodal (small, large, p_large)] *)
  | Constant of int

val sample : Prng.t -> distribution -> int -> Rational.t array
(** [sample rng dist n] draws [n] positive weights. *)

val name : distribution -> string
