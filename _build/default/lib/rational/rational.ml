(* Normalised rationals: den > 0 and gcd (num, den) = 1, except for the
   single infinity point which is stored as 1/0. *)

module B = Bigint

type t = { num : B.t; den : B.t }

let inf = { num = B.one; den = B.zero }
let is_inf x = B.is_zero x.den

let make num den =
  let s = B.sign den in
  if s = 0 then begin
    match B.sign num with
    | 0 -> raise Division_by_zero
    | n when n < 0 -> raise Division_by_zero
    | _ -> inf
  end
  else
    let num = if s < 0 then B.neg num else num in
    let den = B.abs den in
    if B.is_zero num then { num = B.zero; den = B.one }
    else
      let g = B.gcd num den in
      { num = B.div num g; den = B.div den g }

let of_bigint n = { num = n; den = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints a b = make (B.of_int a) (B.of_int b)
let zero = of_int 0
let one = of_int 1
let two = of_int 2
let half = of_ints 1 2
let num x = x.num
let den x = x.den
let is_zero x = B.is_zero x.num && not (is_inf x)
let sign x = if is_inf x then 1 else B.sign x.num

let equal a b =
  (* Normalised representation makes structural equality semantic. *)
  B.equal a.num b.num && B.equal a.den b.den

let compare a b =
  match (is_inf a, is_inf b) with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> B.compare (B.mul a.num b.den) (B.mul b.num a.den)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let hash x = (B.hash x.num * 31) + B.hash x.den

let neg x =
  if is_inf x then raise Division_by_zero else { x with num = B.neg x.num }

let abs x = if B.sign x.num < 0 then neg x else x

let add a b =
  match (is_inf a, is_inf b) with
  | true, _ | _, true -> inf
  | false, false ->
      make
        (B.add (B.mul a.num b.den) (B.mul b.num a.den))
        (B.mul a.den b.den)

let sub a b =
  if is_inf b then raise Division_by_zero
  else if is_inf a then inf
  else
    make (B.sub (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)

let mul a b =
  match (is_inf a, is_inf b) with
  | true, _ ->
      if sign b <= 0 then raise Division_by_zero else inf
  | _, true ->
      if sign a <= 0 then raise Division_by_zero else inf
  | false, false -> make (B.mul a.num b.num) (B.mul a.den b.den)

let inv x =
  if is_inf x then zero
  else if B.is_zero x.num then inf
  else make x.den x.num

let div a b =
  match (is_inf a, is_inf b) with
  | true, true -> raise Division_by_zero
  | true, false ->
      if sign b < 0 then raise Division_by_zero else inf
  | false, true -> zero
  | false, false ->
      if B.is_zero b.num then raise Division_by_zero
      else make (B.mul a.num b.den) (B.mul a.den b.num)

let mul_int x n = mul x (of_int n)
let div_int x n = div x (of_int n)
let to_float x = if is_inf x then Float.infinity else B.to_float x.num /. B.to_float x.den

let to_string x =
  if is_inf x then "inf"
  else if B.equal x.den B.one then B.to_string x.num
  else B.to_string x.num ^ "/" ^ B.to_string x.den

let of_string s =
  if String.trim s = "inf" then inf
  else
    match String.index_opt s '/' with
    | None -> of_bigint (B.of_string s)
    | Some i ->
        let p = String.sub s 0 i in
        let q = String.sub s (i + 1) (String.length s - i - 1) in
        make (B.of_string p) (B.of_string q)

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
