(** Exact rational numbers over {!Bigint}, extended with a single point at
    positive infinity.

    The infinity point exists because α-ratios [w(Γ(S)) / w(S)] are taken of
    vertex sets that may have zero weight — Sybil splits legitimately assign
    weight 0 to one identity (paper, Case C-2).  Such sets are never
    bottlenecks unless every candidate is infinite, and a total order that
    places [+∞] above all finite values makes the decomposition code
    uniform.

    Values are kept normalised: [den > 0], [gcd (num, den) = 1], and
    infinity is the unique value with [den = 0] (represented as [1/0]). *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val half : t
val inf : t

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den] normalises the fraction.  [den] may be negative (the sign
    moves to the numerator) or zero (the result is [inf] when [num > 0]).
    @raise Division_by_zero when both [num] and [den] are zero, or when
    [num < 0] and [den = 0] (there is no negative infinity). *)

val of_int : int -> t
val of_ints : int -> int -> t
val of_bigint : Bigint.t -> t

val of_string : string -> t
(** Accepts ["p"], ["p/q"] and ["inf"].
    @raise Invalid_argument on malformed input. *)

(** {1 Destruction} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
val to_float : t -> float
val to_string : t -> string

(** {1 Predicates and comparison} *)

val is_inf : t -> bool
val is_zero : t -> bool
val sign : t -> int
(** [-1], [0] or [1]; [inf] has sign [1]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order with [inf] as the maximum. *)

val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic}

    Operations involving [inf] follow the usual conventions where the result
    is determined ([inf + x = inf], [inf * x = inf] for [x > 0], [x / inf =
    0], …) and raise [Division_by_zero] on the indeterminate forms
    [inf - inf], [0 * inf] and [inf / inf]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val inv : t -> t
val mul_int : t -> int -> t
val div_int : t -> int -> t

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
