(** Linear-time maximal-minimiser oracle for chain graphs.

    {!Chain_solver.h_and_argmax} answers "is vertex [u] in the maximal
    minimiser?" by re-running the whole DP with [u] forced into [S] —
    O(n) per vertex, O(n²) per Dinkelbach step.  This module computes the
    same answers from one forward and one backward sweep: for every
    position the minimum cost of the prefix and of the suffix is tabulated
    per boundary state, and the forced-vertex minimum is their O(1)
    combination.  O(n) per Dinkelbach step in total.

    Cycles are handled by conditioning on the boundary choices of the cut
    vertex (4 sweep pairs instead of 1).

    Produces bit-identical results to {!Chain_solver} (property-tested);
    the ablation benchmark quantifies the speedup. *)

val h_and_argmax :
  Graph.t -> mask:Vset.t -> alpha:Rational.t -> Rational.t * Vset.t
(** Drop-in replacement for {!Chain_solver.h_and_argmax}.
    @raise Invalid_argument if a masked vertex has in-mask degree > 2. *)

val maximal_bottleneck : Graph.t -> mask:Vset.t -> Vset.t
(** Dinkelbach iteration over this oracle. *)
