module Q = Rational

let solve ~oracle ~alpha_of ~init =
  let rec iterate alpha guard =
    if guard = 0 then
      invalid_arg "Dinkelbach.solve: no convergence (oracle inconsistent?)";
    let h, s_max = oracle ~alpha in
    match Q.sign h with
    | 0 -> (s_max, alpha)
    | n when n > 0 ->
        invalid_arg "Dinkelbach.solve: oracle returned h > 0"
    | _ ->
        let alpha' = alpha_of s_max in
        if Q.compare alpha' alpha >= 0 then
          invalid_arg "Dinkelbach.solve: no strict progress"
        else iterate alpha' (guard - 1)
  in
  (* The α values visited are ratios of subset sums; strictly decreasing
     sequences through that set are finite, but guard against oracle bugs
     with a generous fuel bound. *)
  iterate init 100_000
