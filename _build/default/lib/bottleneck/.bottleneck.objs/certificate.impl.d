lib/bottleneck/certificate.ml: Array Decompose Graph Hashtbl List Maxflow Printf Rational Vset
