lib/bottleneck/classes.mli: Decompose Format Graph
