lib/bottleneck/chain_solver.mli: Graph Rational Vset
