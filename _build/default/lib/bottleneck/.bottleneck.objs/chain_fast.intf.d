lib/bottleneck/chain_fast.mli: Graph Rational Vset
