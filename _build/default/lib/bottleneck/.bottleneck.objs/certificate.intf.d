lib/bottleneck/certificate.mli: Decompose Graph Rational
