lib/bottleneck/dinkelbach.ml: Rational
