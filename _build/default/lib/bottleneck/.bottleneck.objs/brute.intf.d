lib/bottleneck/brute.mli: Graph Rational Vset
