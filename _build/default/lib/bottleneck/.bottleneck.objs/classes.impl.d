lib/bottleneck/classes.ml: Array Decompose Format Graph Hashtbl List Rational Vset
