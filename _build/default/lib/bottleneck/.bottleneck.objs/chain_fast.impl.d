lib/bottleneck/chain_fast.ml: Array Chain_solver Dinkelbach Graph List Rational Vset
