lib/bottleneck/flow_solver.ml: Array Dinkelbach Graph Hashtbl Maxflow Rational Vset
