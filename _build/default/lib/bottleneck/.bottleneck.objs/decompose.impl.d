lib/bottleneck/decompose.ml: Array Brute Chain_fast Chain_solver Flow_solver Format Graph List Printf Rational Vset
