lib/bottleneck/dinkelbach.mli: Rational Vset
