lib/bottleneck/flow_solver.mli: Graph Rational Vset
