lib/bottleneck/decompose.mli: Format Graph Rational Vset
