lib/bottleneck/brute.ml: Array Graph Rational Vset
