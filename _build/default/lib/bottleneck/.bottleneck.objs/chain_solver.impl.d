lib/bottleneck/chain_solver.ml: Array Dinkelbach Graph Hashtbl List Rational Vset
