(** B class / C class vertex classification (paper, Definition 4).

    Vertices of a pair with [α_i < 1] are B class or C class according to
    the side they lie on; vertices of a last pair with [B_k = C_k] and
    [α_k = 1] are both.

    The paper's Section III analysis refines the [Both] vertices of a path
    (or even ring) into alternating B/C classes anchored at a chosen vertex
    (discussion after Lemma 14); [refine_alternating] implements that
    rule. *)

type cls = B | C | Both

val equal_cls : cls -> cls -> bool
val pp_cls : Format.formatter -> cls -> unit

val of_decomposition : Graph.t -> Decompose.t -> cls array
(** Classification of every vertex. *)

val refine_alternating : Graph.t -> Decompose.t -> anchor:int -> cls array
(** Like {!of_decomposition}, but the connected component of [anchor]
    inside its [α = 1] pair's induced subgraph — when that component is a
    path or an even cycle — is relabelled alternately with [anchor] in C
    class.  Other [Both] vertices (odd cycles, or [α < 1] anchors) are left
    as [Both].
    @raise Invalid_argument if [anchor] is out of range. *)

val may_exchange : Graph.t -> Decompose.t -> int -> int -> bool
(** Whether two adjacent vertices exchange resource under the BD
    allocation: they must lie in the same pair, on opposite sides (or in
    an [α = 1] pair). *)
