(* Sign-magnitude arbitrary-precision integers, base 10^9 limbs.

   Invariants:
   - [mag] is little-endian with a non-zero most-significant limb;
   - [sign = 0] iff [mag] is empty, otherwise [sign] is [-1] or [1];
   - every limb lies in [0, base).

   All limb-level arithmetic stays within the native 63-bit [int]: products
   of two limbs are below 10^18 and every intermediate sum below computes
   headroom of ~4.6*10^18. *)

let base = 1_000_000_000
let base_digits = 9

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }
let one = { sign = 1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

(* ------------------------------------------------------------------ *)
(* Magnitude (unsigned) helpers                                        *)
(* ------------------------------------------------------------------ *)

(* Number of significant limbs in [a] considering only the first [len]. *)
let significant a len =
  let i = ref len in
  while !i > 0 && a.(!i - 1) = 0 do
    decr i
  done;
  !i

let normalize_mag a =
  let n = significant a (Array.length a) in
  if n = Array.length a then a else Array.sub a 0 n

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec loop i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else loop (i - 1)
    in
    loop (la - 1)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      !carry + (if i < la then a.(i) else 0) + if i < lb then b.(i) else 0
    in
    if s >= base then (
      r.(i) <- s - base;
      carry := 1)
    else (
      r.(i) <- s;
      carry := 0)
  done;
  normalize_mag r

(* Requires [a >= b] as magnitudes. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - !borrow - if i < lb then b.(i) else 0 in
    if d < 0 then (
      r.(i) <- d + base;
      borrow := 1)
    else (
      r.(i) <- d;
      borrow := 0)
  done;
  assert (!borrow = 0);
  normalize_mag r

let mul_mag_int a m =
  (* [0 <= m < base] *)
  if m = 0 then [||]
  else
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * m) + !carry in
      r.(i) <- p mod base;
      carry := p / base
    done;
    r.(la) <- !carry;
    normalize_mag r

let schoolbook_threshold = 32

let mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let p = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- p mod base;
        carry := p / base
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let p = r.(!k) + !carry in
        r.(!k) <- p mod base;
        carry := p / base;
        incr k
      done
    end
  done;
  normalize_mag r

(* Karatsuba on magnitudes.  Splitting at [m] limbs:
   a = a0 + a1*B^m, b = b0 + b1*B^m,
   a*b = z0 + (z1 - z0 - z2)*B^m + z2*B^2m
   with z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)*(b0+b1). *)
let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la <= schoolbook_threshold || lb <= schoolbook_threshold then
    mul_schoolbook a b
  else begin
    let m = (Stdlib.max la lb + 1) / 2 in
    let lo x =
      normalize_mag (Array.sub x 0 (Stdlib.min m (Array.length x)))
    in
    let hi x =
      if Array.length x <= m then [||]
      else Array.sub x m (Array.length x - m)
    in
    let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
    let z0 = mul_mag a0 b0 in
    let z2 = mul_mag a1 b1 in
    let z1 = mul_mag (add_mag a0 a1) (add_mag b0 b1) in
    let mid = sub_mag (sub_mag z1 z0) z2 in
    let r = Array.make (la + lb + 1) 0 in
    let add_at ofs x =
      let carry = ref 0 in
      let lx = Array.length x in
      for i = 0 to lx - 1 do
        let s = r.(ofs + i) + x.(i) + !carry in
        if s >= base then (
          r.(ofs + i) <- s - base;
          carry := 1)
        else (
          r.(ofs + i) <- s;
          carry := 0)
      done;
      let k = ref (ofs + lx) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        if s >= base then (
          r.(!k) <- s - base;
          carry := 1)
        else (
          r.(!k) <- s;
          carry := 0);
        incr k
      done
    in
    add_at 0 z0;
    add_at m mid;
    add_at (2 * m) z2;
    normalize_mag r
  end

(* Short division of a magnitude by [0 < d < base]: quotient and int rest. *)
let divmod_mag_int a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r * base) + a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize_mag q, !r)

(* Knuth algorithm D on magnitudes; requires [Array.length v >= 2] and
   [u >= v].  Returns (quotient, remainder). *)
let divmod_mag_long u v =
  (* Normalise so that the top limb of the divisor is at least base/2, by
     doubling both operands.  Doubling may grow the divisor by a limb (the
     new top limb is then 1), in which case further doublings raise it back
     above base/2; at most ~60 doublings in total.  The quotient is invariant
     under common scaling and the remainder is unscaled exactly. *)
  let shift = ref 0 in
  let vn = ref v in
  while !vn.(Array.length !vn - 1) < base / 2 do
    vn := mul_mag_int !vn 2;
    incr shift
  done;
  let un0 = ref u in
  for _ = 1 to !shift do
    un0 := mul_mag_int !un0 2
  done;
  let vn = !vn and un0 = !un0 in
  let n = Array.length vn in
  let m = Array.length un0 - n in
  (* Working dividend with an explicit extra top limb. *)
  let w = Array.make (Array.length un0 + 1) 0 in
  Array.blit un0 0 w 0 (Array.length un0);
  let q = Array.make (m + 1) 0 in
  let vn1 = vn.(n - 1) and vn2 = vn.(n - 2) in
  for j = m downto 0 do
    let num = (w.(j + n) * base) + w.(j + n - 1) in
    let qhat = ref (num / vn1) and rhat = ref (num mod vn1) in
    let again = ref true in
    while !again do
      if !qhat >= base || !qhat * vn2 > (!rhat * base) + w.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + vn1;
        if !rhat >= base then again := false
      end
      else again := false
    done;
    (* Multiply and subtract: w[j .. j+n] -= qhat * vn. *)
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !borrow in
      let t = w.(i + j) - (p mod base) in
      if t < 0 then (
        w.(i + j) <- t + base;
        borrow := (p / base) + 1)
      else (
        w.(i + j) <- t;
        borrow := p / base)
    done;
    let t = w.(j + n) - !borrow in
    if t < 0 then begin
      (* qhat was one too large: add the divisor back. *)
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s = w.(i + j) + vn.(i) + !carry in
        if s >= base then (
          w.(i + j) <- s - base;
          carry := 1)
        else (
          w.(i + j) <- s;
          carry := 0)
      done;
      w.(j + n) <- t + !carry
    end
    else w.(j + n) <- t;
    q.(j) <- !qhat
  done;
  let rem = ref (normalize_mag (Array.sub w 0 n)) in
  for _ = 1 to !shift do
    let r, leftover = divmod_mag_int !rem 2 in
    assert (leftover = 0);
    rem := r
  done;
  (normalize_mag q, !rem)

let divmod_mag u v =
  match Array.length v with
  | 0 -> raise Division_by_zero
  | _ when compare_mag u v < 0 -> ([||], u)
  | 1 ->
      let q, r = divmod_mag_int u v.(0) in
      (q, if r = 0 then [||] else [| r |])
  | _ -> divmod_mag_long u v

(* ------------------------------------------------------------------ *)
(* Signed layer                                                        *)
(* ------------------------------------------------------------------ *)

let make sign mag = if Array.length mag = 0 then zero else { sign; mag }
let sign x = x.sign
let is_zero x = x.sign = 0
let neg x = make (-x.sign) x.mag
let abs x = if x.sign < 0 then neg x else x

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash x =
  Array.fold_left (fun acc limb -> (acc * 1_000_003) + limb) x.sign x.mag
  land max_int

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else
    let c = compare_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (sub_mag a.mag b.mag)
    else make b.sign (sub_mag b.mag a.mag)

let sub a b = add a (neg b)
let succ x = add x one
let pred x = sub x one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else
    let qm, rm = divmod_mag a.mag b.mag in
    (make (a.sign * b.sign) qm, make a.sign rm)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd_mag a b = if is_zero b then a else gcd_mag b (rem a b)
let gcd a b = gcd_mag (abs a) (abs b)

let of_int n =
  if n = 0 then zero
  else begin
    (* min_int has no positive counterpart; peel one limb first. *)
    let sign = if n < 0 then -1 else 1 in
    let rec limbs n acc =
      if n = 0 then List.rev acc
      else limbs (n / base) ((n mod base) :: acc)
    in
    let l =
      if n <> Stdlib.min_int then limbs (Stdlib.abs n) []
      else
        let q = -(n / base) and r = -(n mod base) in
        r :: limbs q []
    in
    make sign (normalize_mag (Array.of_list l))
  end

let to_int x =
  (* max_int has 3 limbs in base 10^9 (about 4.6e18). *)
  let l = Array.length x.mag in
  if l = 0 then Some 0
  else if l > 3 then None
  else
    let rec value i acc =
      if i < 0 then Some acc
      else
        let limb = x.mag.(i) in
        if acc > (max_int - limb) / base then None
        else value (i - 1) ((acc * base) + limb)
    in
    match value (l - 1) 0 with
    | None ->
        (* One value, min_int, overflows the positive range by exactly 1. *)
        if x.sign < 0 && equal (neg x) (of_int Stdlib.min_int |> neg) then
          Some Stdlib.min_int
        else None
    | Some v -> Some (if x.sign < 0 then -v else v)

let to_int_exn x =
  match to_int x with
  | Some v -> v
  | None -> failwith "Bigint.to_int_exn: value out of int range"

let to_float x =
  let f = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    f := (!f *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  if x.sign < 0 then -. !f else !f

let mul_int a n =
  if n = 0 || a.sign = 0 then zero
  else
    let s = if n < 0 then -a.sign else a.sign in
    let m = Stdlib.abs n in
    if m < base then make s (mul_mag_int a.mag m) else mul a (of_int n)

let add_int a n = add a (of_int n)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1)
    else go acc (mul b b) (n lsr 1)
  in
  go one x n

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create (Array.length x.mag * base_digits) in
    if x.sign < 0 then Buffer.add_char buf '-';
    let top = Array.length x.mag - 1 in
    Buffer.add_string buf (string_of_int x.mag.(top));
    for i = top - 1 downto 0 do
      Buffer.add_string buf (Printf.sprintf "%09d" x.mag.(i))
    done;
    Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let digits = Buffer.create n in
  for i = start to n - 1 do
    match s.[i] with
    | '0' .. '9' as c -> Buffer.add_char digits c
    | '_' -> ()
    | _ -> invalid_arg "Bigint.of_string: invalid character"
  done;
  let ds = Buffer.contents digits in
  let nd = String.length ds in
  if nd = 0 then invalid_arg "Bigint.of_string: no digits";
  let nlimbs = (nd + base_digits - 1) / base_digits in
  let mag = Array.make nlimbs 0 in
  for limb = 0 to nlimbs - 1 do
    let stop = nd - (limb * base_digits) in
    let from = Stdlib.max 0 (stop - base_digits) in
    mag.(limb) <- int_of_string (String.sub ds from (stop - from))
  done;
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
