(** Arbitrary-precision signed integers.

    The sealed build environment provides no [zarith]; this module supplies
    the exact integer arithmetic on which the whole reproduction rests.
    Bottleneck decompositions compare {% α %}-ratios of vertex sets, i.e.
    ratios of integer subset sums; a single mis-ordered comparison yields a
    wrong decomposition, so all comparisons must be exact.

    Representation: sign and little-endian magnitude in base [10^9] limbs.
    All operations are purely functional. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Construction and destruction} *)

val of_int : int -> t

val to_int : t -> int option
(** [to_int x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val to_float : t -> float
(** Nearest float; large values lose precision, never raise. *)

val of_string : string -> t
(** Accepts an optional sign followed by decimal digits, with optional [_]
    separators.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

(** {1 Predicates and comparison} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val succ : t -> t
val pred : t -> t

val mul : t -> t -> t
(** Schoolbook below a limb threshold, Karatsuba above it. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|] and [r]
    carrying the sign of [a] (truncated division, as [Stdlib.( / )]).
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Non-negative gcd; [gcd zero zero = zero]. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0].
    @raise Invalid_argument on negative exponent. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
